package taint

import (
	"fmt"

	"spt/internal/isa"
	"spt/internal/pipeline"
)

// Method selects the untaint machinery enabled in an SPT configuration
// (paper Table 2).
type Method uint8

const (
	// UntaintNone disables all untainting: transmitters execute and
	// branches resolve only at the visibility point. This is the paper's
	// SecureBaseline (artifact flag --untaint-method=none).
	UntaintNone Method = iota
	// UntaintFwd adds VP declassification, rename-time public outputs, and
	// forward propagation.
	UntaintFwd
	// UntaintBwd adds the backward (input) untaint rules and backward
	// store-to-load propagation.
	UntaintBwd
	// UntaintIdeal applies the rules to fixpoint every cycle with
	// unbounded broadcast width.
	UntaintIdeal
)

func (m Method) String() string {
	switch m {
	case UntaintNone:
		return "none"
	case UntaintFwd:
		return "fwd"
	case UntaintBwd:
		return "bwd"
	case UntaintIdeal:
		return "ideal"
	}
	return "method(?)"
}

// Protection selects what happens to a transmitter with tainted operands
// (paper §6.3: SPT composes with any comprehensive protection policy).
type Protection uint8

const (
	// DelayExecution holds the transmitter until its operands untaint or
	// it reaches the visibility point (the paper's evaluated policy).
	DelayExecution Protection = iota
	// ObliviousExecution executes the transmitter with no speculative
	// cache/TLB state change and a fixed latency, in the spirit of SDO
	// (Yu et al., ISCA'20).
	ObliviousExecution
)

func (p Protection) String() string {
	if p == ObliviousExecution {
		return "oblivious"
	}
	return "delay"
}

// SPTConfig parameterizes the SPT policy.
type SPTConfig struct {
	Method Method
	Shadow ShadowMode
	// BroadcastWidth bounds register untaint events applied per cycle
	// (paper §7.3/§9.4; the evaluated design uses 3). <= 0 means
	// unbounded. UntaintIdeal ignores it.
	BroadcastWidth int
	// Protect selects the transmitter protection policy.
	Protect Protection
	// ObliviousLatencyCycles is the fixed latency of an oblivious memory
	// access. The default (when zero) is 180 cycles: a full L1-L2-L3-DRAM
	// round trip, so the fixed latency can always cover where the data
	// actually lives.
	ObliviousLatencyCycles uint64
}

// DefaultSPTConfig returns the paper's full SPT design:
// SPT{Bwd, ShadowL1} with untaint broadcast width 3.
func DefaultSPTConfig() SPTConfig {
	return SPTConfig{Method: UntaintBwd, Shadow: ShadowL1, BroadcastWidth: 3}
}

// SPT is the Speculative Privacy Tracking policy. All data (architectural
// registers and memory) starts tainted; taint is removed only when the
// attacker could infer the value from non-speculatively leaked operands.
type SPT struct {
	cfg  SPTConfig
	core *pipeline.Core

	// taint is per physical register; true = tainted (secret so far).
	taint []bool

	// pendingVP holds registers declassified by a VP crossing, waiting for
	// an untaint broadcast slot. Entries carry the declassifying
	// instruction's sequence number for age-priority.
	pendingVP []pendingUntaint

	shadow *shadow

	// retiredStoreData remembers the data-operand taint of retired stores
	// that may still be the forwarding source of an in-flight load (their
	// physical registers may be recycled after retirement).
	retiredStoreData map[uint64]bool // store seq -> data taint at retire

	// cycleUntaints counts registers untainted in the current cycle, for
	// the Figure 9 histogram.
	cycleUntaints int

	// candBuf and seenReg are per-cycle scratch reused across Tick calls so
	// the steady-state untaint pass performs no allocation.
	candBuf []pendingUntaint
	seenReg []bool

	Stats Stats
}

type pendingUntaint struct {
	reg   pipeline.PhysReg
	seq   uint64 // age of the instruction causing the untaint
	isDst bool
	kind  EventKind
}

// NewSPT builds an SPT policy (or the SecureBaseline, for UntaintNone).
func NewSPT(cfg SPTConfig) *SPT {
	return &SPT{cfg: cfg, retiredStoreData: make(map[uint64]bool)}
}

// Config returns the policy's configuration.
func (s *SPT) Config() SPTConfig { return s.cfg }

// Attach implements pipeline.Policy.
func (s *SPT) Attach(c *pipeline.Core) {
	s.core = c
	s.taint = make([]bool, c.PhysRegCount())
	// All architectural state starts tainted (secret until leaked), except
	// the hardwired zero register, whose value is public by construction.
	for p := 1; p < isa.NumRegs; p++ {
		s.taint[p] = true
	}
	s.seenReg = make([]bool, c.PhysRegCount())
	s.shadow = newShadow(s.cfg.Shadow)
	if s.cfg.Shadow == ShadowL1 {
		c.Hier.L1D.OnFill = s.shadow.onFill
		c.Hier.L1D.OnEvict = s.shadow.onEvict
	}
}

// Tainted reports a physical register's taint (for tests).
func (s *SPT) Tainted(p pipeline.PhysReg) bool {
	if p == pipeline.NoReg {
		return false
	}
	return s.taint[p]
}

func (s *SPT) tracking() bool { return s.cfg.Method != UntaintNone }

// OnRename implements pipeline.Policy: compute the initial taint of the
// instruction's output (§6.3, §6.5).
func (s *SPT) OnRename(di *pipeline.DynInst) {
	if !s.tracking() || di.Dst == pipeline.NoReg {
		return
	}
	switch {
	case di.IsLd:
		// Loads are conservatively tainted at rename; the data's taint is
		// not known yet (§6.3).
		s.taint[di.Dst] = true
	case di.Ins.Op == isa.MOVI, di.Ins.Op == isa.JAL, di.Ins.Op == isa.JALR:
		// Output determined only by ROB contents: immediates and link
		// addresses are public (§6.5).
		s.taint[di.Dst] = false
		s.Stats.Events[EvLoadImm]++
	default:
		s.taint[di.Dst] = s.Tainted(di.Src1) || s.Tainted(di.Src2)
	}
	if s.taint[di.Dst] {
		s.Stats.TaintedAtRename++
	}
}

// leakedOperands appends the operand registers di's execution leaks:
// addresses for loads/stores, predicates for branches and indirect jumps.
func leakedOperands(di *pipeline.DynInst, dst []pipeline.PhysReg) []pipeline.PhysReg {
	switch {
	case di.IsLd || di.IsSt:
		dst = append(dst, di.Src1)
	case di.Ins.IsCondBranch():
		dst = append(dst, di.Src1, di.Src2)
	case di.Ins.Op == isa.JALR:
		dst = append(dst, di.Src1)
	}
	return dst
}

// OnVP implements pipeline.Policy: a transmitter or branch crossing the
// visibility point non-speculatively leaks its operands, declassifying
// them (§6.6).
func (s *SPT) OnVP(di *pipeline.DynInst) {
	if !s.tracking() {
		return
	}
	var buf [2]pipeline.PhysReg
	for _, p := range leakedOperands(di, buf[:0]) {
		if p != pipeline.NoReg && s.taint[p] {
			s.pendingVP = append(s.pendingVP, pendingUntaint{
				reg: p, seq: di.Seq, isDst: false, kind: EvVPDeclass,
			})
		}
	}
}

// OnSquash implements pipeline.Policy: squashed instructions release their
// destination registers, so pending untaints for them must be dropped.
func (s *SPT) OnSquash(di *pipeline.DynInst) {
	if !s.tracking() {
		return
	}
	if di.Dst != pipeline.NoReg {
		s.purgePending(di.Dst)
	}
}

// OnRetire implements pipeline.Policy: stores write their data's taint
// into the shadow structure (§6.8 rule 1); the retiring instruction's
// OldDst register is freed, so pending untaints on it are dropped.
func (s *SPT) OnRetire(di *pipeline.DynInst) {
	if !s.tracking() {
		return
	}
	if di.OldDst != pipeline.NoReg && di.Dst != pipeline.NoReg {
		s.purgePending(di.OldDst)
	}
	if di.IsSt {
		dataTaint := s.Tainted(di.Src2)
		s.retiredStoreData[di.Seq] = dataTaint
		if s.shadow.setRange(di.EffAddr, int(di.MemSz), dataTaint) {
			s.Stats.MemUntaints++
		}
	}
	// Garbage-collect forwarding snapshots no load can reference anymore.
	if len(s.retiredStoreData) > 4*s.core.Cfg.LQSize {
		oldest := di.Seq
		for i := 0; i < s.core.LQLen(); i++ {
			if ld := s.core.LQAt(i); ld.Seq < oldest {
				oldest = ld.Seq
			}
		}
		for seq := range s.retiredStoreData {
			if seq < oldest {
				delete(s.retiredStoreData, seq)
			}
		}
	}
}

func (s *SPT) purgePending(p pipeline.PhysReg) {
	out := s.pendingVP[:0]
	for _, pu := range s.pendingVP {
		if pu.reg != p {
			out = append(out, pu)
		}
	}
	s.pendingVP = out
}

// OnLoadComplete implements pipeline.Policy: a load's output taint is set
// from the taint of the data it read (§6.8 rule on loads). Forwarded loads
// stay tainted until STLPublic permits propagation (§6.7).
func (s *SPT) OnLoadComplete(di *pipeline.DynInst) {
	if !s.tracking() || di.Dst == pipeline.NoReg {
		return
	}
	if di.FwdStore != nil {
		return // handled by the STLPublic-gated propagation in Tick
	}
	if !s.taint[di.Dst] {
		// Output was already declassified (only possible past the VP, per
		// the paper's Lemma 1): the read bytes become public (§6.8 rule 2).
		if s.shadow.setRange(di.EffAddr, int(di.MemSz), false) {
			s.Stats.MemUntaints++
		}
		return
	}
	if !s.shadow.rangeTainted(di.EffAddr, int(di.MemSz)) {
		// Untainted bytes: the output becomes public. This rides the
		// existing writeback broadcast, not the untaint broadcast.
		s.taint[di.Dst] = false
		s.Stats.Events[EvShadowLoad]++
		s.cycleUntaints++
	}
}

// MayExecuteMem implements pipeline.Policy (§6.3: delayed execution).
func (s *SPT) MayExecuteMem(di *pipeline.DynInst) bool {
	if di.AtVP {
		return true
	}
	if !s.tracking() {
		return false // SecureBaseline: wait for the VP
	}
	return !s.Tainted(di.Src1)
}

// MayResolveCF implements pipeline.Policy: resolution effects wait until
// the predicate is public (§6.4).
func (s *SPT) MayResolveCF(di *pipeline.DynInst) bool {
	if di.AtVP {
		return true
	}
	if !s.tracking() {
		return false
	}
	return !s.Tainted(di.Src1) && !s.Tainted(di.Src2)
}

// MaySquashOnViolation implements pipeline.Policy: the violation squash is
// an implicit branch over the load's and the involved stores' addresses
// (§6.7, footnote 4).
func (s *SPT) MaySquashOnViolation(ld *pipeline.DynInst) bool {
	if ld.AtVP {
		return true
	}
	if !s.tracking() {
		return false
	}
	if s.Tainted(ld.Src1) {
		return false
	}
	// The violating store is identified by value (the load's recorded seq
	// and address operand): its ROB slot may already hold another
	// instruction by the time the squash is permitted.
	if ld.HasViolStore {
		if s.Tainted(ld.ViolSrc1) {
			return false
		}
		// All stores between the violating store and the load must also
		// have public addresses.
		for i := 0; i < s.core.SQLen(); i++ {
			other := s.core.SQAt(i)
			if other.Seq > ld.ViolStoreSeq && other.Seq < ld.Seq && other.AddrKnown && s.Tainted(other.Src1) {
				return false
			}
		}
	}
	return true
}

// cycleUntaints counts registers untainted in the current cycle for the
// Figure 9 histogram.
func (s *SPT) recordCycle() {
	n := s.cycleUntaints
	s.cycleUntaints = 0
	if n == 0 {
		return
	}
	s.Stats.UntaintingCycles++
	if n > 10 {
		n = 10
	}
	s.Stats.UntaintHist[n-1]++
}

// Tick implements pipeline.Policy: the per-cycle untaint propagation
// (paper §7.3's two-phase scheme). Phase one evaluates the rules against
// the cycle-start taint state; phase two commits at most BroadcastWidth
// newly untainted registers, oldest instruction first, destinations before
// sources. UntaintIdeal instead iterates to fixpoint.
func (s *SPT) Tick() {
	if !s.tracking() {
		return
	}
	if s.cfg.Method == UntaintIdeal {
		for {
			n := s.commit(s.candidates(), 0)
			if n == 0 {
				break
			}
		}
		s.recordCycle()
		return
	}
	s.commit(s.candidates(), s.cfg.BroadcastWidth)
	s.recordCycle()
}

// candidates gathers all registers the rules can untaint, evaluated
// against the current taint state, in priority order. The returned slice
// aliases a scratch buffer reused across cycles; it is only valid until the
// next call.
func (s *SPT) candidates() []pendingUntaint {
	out := append(s.candBuf[:0], s.pendingVP...)

	older, younger := s.core.ROBWindow()
	out = s.ruleWindow(older, out)
	out = s.ruleWindow(younger, out)
	out = s.stlfCandidates(out)
	s.candBuf = out[:0]
	return out
}

// ruleWindow applies the register rules to one ring segment of the
// in-flight window, oldest first.
func (s *SPT) ruleWindow(win []pipeline.DynInst, out []pendingUntaint) []pendingUntaint {
	for i := range win {
		di := &win[i]
		// Every register rule needs a destination register: the forward
		// rule untaints it, the backward rules require it untainted.
		if di.Squashed || di.Dst == pipeline.NoReg {
			continue
		}
		out = s.ruleCandidates(di, out)
	}
	return out
}

// ruleCandidates applies the forward and backward register rules to one
// in-flight instruction (§6.6).
func (s *SPT) ruleCandidates(di *pipeline.DynInst, out []pendingUntaint) []pendingUntaint {
	// Forward: output of a register-to-register operation with all inputs
	// untainted. Loads are excluded (output depends on memory, §6.6);
	// rename-time public outputs are already untainted.
	if di.Dst != pipeline.NoReg && !di.IsLd && s.taint[di.Dst] &&
		!s.Tainted(di.Src1) && !s.Tainted(di.Src2) {
		out = append(out, pendingUntaint{reg: di.Dst, seq: di.Seq, isDst: true, kind: EvForward})
	}

	if s.cfg.Method < UntaintBwd {
		return out
	}

	// Backward rules require the instruction's output to be untainted.
	if di.Dst == pipeline.NoReg || s.taint[di.Dst] {
		return out
	}
	switch di.Ins.Op {
	case isa.MOV:
		if s.Tainted(di.Src1) {
			out = append(out, pendingUntaint{reg: di.Src1, seq: di.Seq, kind: EvBackward})
		}
	case isa.ADDI, isa.XORI:
		// Invertible with a public immediate.
		if s.Tainted(di.Src1) {
			out = append(out, pendingUntaint{reg: di.Src1, seq: di.Seq, kind: EvBackward})
		}
	case isa.ADD, isa.SUB, isa.XOR:
		// Invertible when all but one input is public.
		t1, t2 := s.Tainted(di.Src1), s.Tainted(di.Src2)
		if t1 && !t2 {
			out = append(out, pendingUntaint{reg: di.Src1, seq: di.Seq, kind: EvBackward})
		} else if t2 && !t1 {
			out = append(out, pendingUntaint{reg: di.Src2, seq: di.Seq, kind: EvBackward})
		}
	}
	return out
}

// stlfCandidates propagates untaint across store-to-load forwarding pairs
// whose implicit branch has become public (§6.7).
func (s *SPT) stlfCandidates(out []pendingUntaint) []pendingUntaint {
	older, younger := s.core.LQWindow()
	out = s.stlfWindow(older, out)
	return s.stlfWindow(younger, out)
}

func (s *SPT) stlfWindow(win []*pipeline.DynInst, out []pendingUntaint) []pendingUntaint {
	for _, ld := range win {
		if ld.FwdStore == nil || !ld.Done || ld.Dst == pipeline.NoReg {
			continue
		}
		// The forwarding source is consulted through the seq-validated
		// reference: once the store retires (or its ring slot is recycled),
		// only its sequence number and the retiredStoreData snapshot remain.
		var st *pipeline.DynInst
		if ld.FwdLive() {
			st = ld.FwdStore
		}
		if !s.stlPublic(ld.FwdSeq, st, ld) {
			continue
		}
		stData, stLive := s.storeDataTaint(ld.FwdSeq, st)
		if s.taint[ld.Dst] && !stData {
			// Forward: the store's public data is the load's value.
			out = append(out, pendingUntaint{reg: ld.Dst, seq: ld.Seq, isDst: true, kind: EvSTLForward})
		}
		if s.cfg.Method >= UntaintBwd && !s.taint[ld.Dst] && stData && stLive {
			// Backward: the load's public output is the store's data.
			out = append(out, pendingUntaint{reg: st.Src2, seq: st.Seq, kind: EvSTLBackward})
		}
	}
	return out
}

// storeDataTaint reads a store's data-operand taint. st is the in-flight
// store, or nil if it has retired; the retired path falls back to the
// snapshot taken at retirement (live=false).
func (s *SPT) storeDataTaint(stSeq uint64, st *pipeline.DynInst) (tainted, live bool) {
	if st == nil {
		t, ok := s.retiredStoreData[stSeq]
		if !ok {
			return true, false
		}
		return t, false
	}
	return s.Tainted(st.Src2), true
}

// STLForwardPublic implements pipeline.STLQuery: forwarding may happen
// openly when the STLPublic condition already holds at execution time
// (the paper's exception in §6.7, in which the load skips the cache).
// Callers pass a live, in-SQ store.
func (s *SPT) STLForwardPublic(st, ld *pipeline.DynInst) bool {
	var public bool
	if !s.tracking() {
		// SecureBaseline: both ends must be non-speculative.
		public = ld.AtVP && (st.Retired || st.AtVP)
	} else {
		public = s.stlPublic(st.Seq, st, ld)
	}
	if public {
		s.Stats.STLPublicHits++
	}
	return public
}

// stlPublic evaluates the STLPublic(S, L) condition (§6.7): the load's
// address is public and every store from S to L (exclusive) has a public
// address, so the attacker already knows L reads its value from S. st is
// nil when the store has retired (a retired store's address leaked
// non-speculatively, so it needs no check of its own).
func (s *SPT) stlPublic(stSeq uint64, st *pipeline.DynInst, ld *pipeline.DynInst) bool {
	if s.Tainted(ld.Src1) && !ld.AtVP {
		return false
	}
	if st != nil && s.Tainted(st.Src1) && !st.AtVP {
		return false
	}
	for i := 0; i < s.core.SQLen(); i++ {
		other := s.core.SQAt(i)
		if other.Seq <= stSeq || other.Seq >= ld.Seq {
			continue
		}
		if other.AtVP {
			continue
		}
		if !other.AddrKnown || s.Tainted(other.Src1) {
			return false
		}
	}
	return true
}

// commit applies up to width untaints (0 = unbounded) in priority order:
// older instructions first, destinations before sources. It returns the
// number of registers actually untainted.
func (s *SPT) commit(cands []pendingUntaint, width int) int {
	if len(cands) == 0 {
		return 0
	}
	// Stable selection without a full sort: selection of the best W.
	sortCandidates(cands)
	applied := 0
	// seenReg is scratch reused across cycles; every entry marked here is
	// cleared before returning (all marked registers appear in cands).
	seen := s.seenReg
	for _, cu := range cands {
		if seen[cu.reg] || !s.taint[cu.reg] {
			seen[cu.reg] = true
			continue
		}
		if width > 0 && applied >= width {
			s.Stats.BroadcastDeferred++
			continue
		}
		seen[cu.reg] = true
		s.taint[cu.reg] = false
		s.Stats.Events[cu.kind]++
		s.cycleUntaints++
		applied++
		s.removePendingVP(cu.reg)
	}
	for _, cu := range cands {
		seen[cu.reg] = false
	}
	return applied
}

func (s *SPT) removePendingVP(p pipeline.PhysReg) {
	for i, pu := range s.pendingVP {
		if pu.reg == p {
			s.pendingVP = append(s.pendingVP[:i], s.pendingVP[i+1:]...)
			return
		}
	}
}

// sortCandidates orders by (seq, dst-before-src) with insertion sort: the
// candidate lists are small and mostly ordered already.
func sortCandidates(c []pendingUntaint) {
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && less(c[j], c[j-1]); j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
}

func less(a, b pendingUntaint) bool {
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	return a.isDst && !b.isDst
}

// ObliviousLatency implements pipeline.ObliviousPolicy: when configured
// for oblivious execution, blocked transmitters run with a fixed latency
// instead of waiting.
func (s *SPT) ObliviousLatency(di *pipeline.DynInst) (uint64, bool) {
	if s.cfg.Protect != ObliviousExecution {
		return 0, false
	}
	if di.IsSt {
		// Store execution only translates; obliviously skipping the TLB
		// lookup costs one cycle.
		return 1, true
	}
	lat := s.cfg.ObliviousLatencyCycles
	if lat == 0 {
		lat = 180
	}
	return lat, true
}

// String describes the configuration (for logs and result tables).
func (s *SPT) String() string {
	if !s.tracking() {
		return "SecureBaseline"
	}
	if s.cfg.Protect == ObliviousExecution {
		return fmt.Sprintf("SPT{%s,%s,w=%d,oblivious}", s.cfg.Method, s.cfg.Shadow, s.cfg.BroadcastWidth)
	}
	return fmt.Sprintf("SPT{%s,%s,w=%d}", s.cfg.Method, s.cfg.Shadow, s.cfg.BroadcastWidth)
}

// ShadowLines reports the number of lines with tracked taint (tests).
func (s *SPT) ShadowLines() int { return s.shadow.trackedLines() }
