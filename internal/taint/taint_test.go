package taint_test

import (
	"math/rand"
	"testing"

	"spt/internal/asm"
	"spt/internal/emu"
	"spt/internal/isa"
	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/taint"
	"spt/internal/workloads"
)

func policies() map[string]func() pipeline.Policy {
	return map[string]func() pipeline.Policy{
		"unsafe": func() pipeline.Policy { return nil },
		"secure": func() pipeline.Policy { return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintNone}) },
		"spt-fwd": func() pipeline.Policy {
			return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintFwd, BroadcastWidth: 3})
		},
		"spt-bwd": func() pipeline.Policy {
			return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintBwd, BroadcastWidth: 3})
		},
		"spt-full": func() pipeline.Policy {
			return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintBwd, Shadow: taint.ShadowL1, BroadcastWidth: 3})
		},
		"spt-shadowmem": func() pipeline.Policy {
			return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintBwd, Shadow: taint.ShadowMem, BroadcastWidth: 3})
		},
		"spt-ideal": func() pipeline.Policy {
			return taint.NewSPT(taint.SPTConfig{Method: taint.UntaintIdeal, Shadow: taint.ShadowMem})
		},
		"stt": func() pipeline.Policy { return taint.NewSTT() },
	}
}

func runWith(t *testing.T, p *isa.Program, model pipeline.AttackModel, pol pipeline.Policy) *pipeline.Core {
	t.Helper()
	cfg := pipeline.DefaultConfig()
	cfg.Model = model
	c, err := pipeline.New(cfg, p, mem.NewHierarchy(mem.DefaultHierarchyConfig()), pol)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(50_000_000, 500_000_000); err != nil {
		t.Fatal(err)
	}
	if !c.Finished() {
		t.Fatal("program did not finish")
	}
	return c
}

// TestAllPoliciesPreserveArchitecture is the central functional-correctness
// property: no protection scheme may change what the program computes.
func TestAllPoliciesPreserveArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	progs := make([]*isa.Program, 0, 12)
	for i := 0; i < 12; i++ {
		progs = append(progs, workloads.RandomProgram(rng.Int63(), 30+rng.Intn(80)))
	}
	for name, mk := range policies() {
		for _, model := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
			for pi, p := range progs {
				e := emu.New(p)
				if _, err := e.Run(60_000_000); err != nil {
					t.Fatal(err)
				}
				c := runWith(t, p, model, mk())
				regs := c.ArchRegs()
				for r := 0; r < isa.NumRegs; r++ {
					if regs[r] != e.State.Regs[r] {
						t.Fatalf("%s/%v prog %d: r%d = %#x, want %#x", name, model, pi, r, regs[r], e.State.Regs[r])
					}
				}
				if c.Stats.Retired != e.State.Retired {
					t.Fatalf("%s/%v prog %d: retired %d, want %d", name, model, pi, c.Stats.Retired, e.State.Retired)
				}
			}
		}
	}
}

// TestOverheadOrdering checks the performance shape the paper reports:
// Unsafe <= STT <= full SPT <= SPT{Fwd} <= SecureBaseline on a
// memory-parallel workload (Figure 7's qualitative ordering).
func TestOverheadOrdering(t *testing.T) {
	// Strided loads with plenty of memory-level parallelism: delaying
	// transmitters destroys MLP, so SecureBaseline suffers hugely.
	b := asm.NewBuilder("mlp")
	quads := make([]uint64, 8192)
	for i := range quads {
		quads[i] = uint64(i)
	}
	b.DataQuads(0x100000, quads)
	b.Movi(1, 0x100000)
	b.Movi(2, 0)
	b.Movi(3, 8000)
	b.Label("top")
	for i := int64(0); i < 8; i++ {
		b.Ld(isa.Reg(10+i), 1, i*8)
	}
	for i := int64(0); i < 8; i++ {
		b.Add(2, 2, isa.Reg(10+i))
	}
	b.Addi(1, 1, 64)
	b.Addi(3, 3, -8)
	b.Bne(3, isa.Zero, "top")
	b.Halt()
	p := b.MustBuild()

	cycles := map[string]uint64{}
	for _, name := range []string{"unsafe", "stt", "spt-full", "spt-fwd", "secure"} {
		c := runWith(t, p, pipeline.Futuristic, policies()[name]())
		cycles[name] = c.Stats.Cycles
	}
	t.Logf("cycles: %v", cycles)
	if !(cycles["unsafe"] <= cycles["stt"] && cycles["stt"] <= cycles["spt-full"]) {
		t.Errorf("expected unsafe <= stt <= spt-full: %v", cycles)
	}
	if !(cycles["spt-full"] <= cycles["spt-fwd"] && cycles["spt-fwd"] <= cycles["secure"]) {
		t.Errorf("expected spt-full <= spt-fwd <= secure: %v", cycles)
	}
	if cycles["secure"] < cycles["unsafe"]*3/2 {
		t.Errorf("SecureBaseline should be much slower than unsafe on MLP code: %v", cycles)
	}
}

// TestVPDeclassificationUnblocksReuse: a second load of the same (already
// non-speculatively leaked) address register executes before reaching the
// VP under SPT, but not under SecureBaseline.
func TestVPDeclassificationUnblocks(t *testing.T) {
	src := `
  movi r1, 0x4000
  ld r2, 0(r1)      ; r2 tainted
  ld r3, 0(r2)      ; tainted address: delayed; declassifies r2 at its VP
  ld r4, 8(r2)      ; same base: SPT executes it as soon as r2 is public
  halt
`
	p := asm.MustAssemble("declass", src)
	spt := taint.NewSPT(taint.SPTConfig{Method: taint.UntaintFwd, BroadcastWidth: 3})
	cS := runWith(t, p, pipeline.Futuristic, spt)
	sec := taint.NewSPT(taint.SPTConfig{Method: taint.UntaintNone})
	cB := runWith(t, p, pipeline.Futuristic, sec)
	if cS.Stats.Cycles > cB.Stats.Cycles {
		t.Errorf("SPT (%d cycles) slower than SecureBaseline (%d)", cS.Stats.Cycles, cB.Stats.Cycles)
	}
	if spt.Stats.Events[taint.EvVPDeclass] == 0 {
		t.Error("expected VP declassification events")
	}
	if spt.Stats.Events[taint.EvLoadImm] == 0 {
		t.Error("expected rename-time public outputs (movi)")
	}
}

// TestForwardUntaintEvents: chains of ALU ops over declassified data
// produce forward untaint events.
func TestForwardUntaintEvents(t *testing.T) {
	// The dependents sit *after* the declassifying transmitter so they are
	// still in flight (younger, unretired) when the declassification lands.
	p := asm.MustAssemble("fwd", `
  movi r1, 0x4000
  ld r2, 0(r1)      ; r2 tainted
  ld r5, 0(r2)      ; tainted address: waits for VP, then declassifies r2
  add r4, r2, r2    ; younger dependent: forward-untaints after r2 declassifies
  addi r6, r4, 1    ; second hop of the dataflow graph
  halt
`)
	spt := taint.NewSPT(taint.DefaultSPTConfig())
	runWith(t, p, pipeline.Futuristic, spt)
	if spt.Stats.Events[taint.EvVPDeclass] == 0 {
		t.Error("no VP declassifications")
	}
	if spt.Stats.Events[taint.EvForward] == 0 {
		t.Error("no forward untaint events (r4 should untaint after r3 declassifies)")
	}
}

// TestBackwardUntaintEvents: declassifying the output of an invertible op
// untaints its remaining tainted input.
func TestBackwardUntaintEvents(t *testing.T) {
	// Backward untainting needs the producing instruction to still be in
	// the ROB when its output is declassified. That happens when the VP
	// runs ahead of retirement — which is exactly the Spectre model (the
	// paper's Figure 8 notes backward untaints are more common there). A
	// slow pointer chase at the head keeps retirement far behind.
	p := asm.MustAssemble("bwd", `
.data 0x7000
.quad 0x7100
.text
  movi r8, 0x7000
  ld r8, 0(r8)      ; slow head blocker (cold miss)
  ld r8, 0(r8)      ; dependent chase: blocks retirement even longer
  movi r1, 0x4000
  ld r2, 0(r1)      ; r2 tainted
  addi r3, r2, 4    ; r3 tainted, invertible in r2
  ld r4, 0(r3)      ; reaches VP early under Spectre: declassifies r3
  add r5, r3, r3
  halt
`)
	spt := taint.NewSPT(taint.SPTConfig{Method: taint.UntaintBwd, BroadcastWidth: 3})
	runWith(t, p, pipeline.Spectre, spt)
	if spt.Stats.Events[taint.EvBackward] == 0 {
		t.Error("no backward untaint events (r2 inferable from declassified r3)")
	}
}

// TestBroadcastWidthLimits: with width 1 and many simultaneous untaints,
// some must be deferred; ideal mode never defers.
func TestBroadcastWidthLimits(t *testing.T) {
	b := asm.NewBuilder("wide")
	b.DataQuads(0x8000, []uint64{0x8000})
	b.Movi(1, 0x8000)
	b.Ld(2, 1, 0) // r2 tainted
	b.Ld(3, 2, 0) // tainted address: delayed; declassifies r2 at VP
	// Many younger dependents of r2: when r2 untaints they all become
	// forward-untaint candidates in the same cycle.
	for i := int64(0); i < 12; i++ {
		b.OpI(isa.ADDI, isa.Reg(10+i), 2, i)
	}
	b.Halt()
	p := b.MustBuild()

	narrow := taint.NewSPT(taint.SPTConfig{Method: taint.UntaintBwd, BroadcastWidth: 1})
	runWith(t, p, pipeline.Futuristic, narrow)
	if narrow.Stats.BroadcastDeferred == 0 {
		t.Error("width-1 broadcast never deferred an untaint")
	}
	ideal := taint.NewSPT(taint.SPTConfig{Method: taint.UntaintIdeal, Shadow: taint.ShadowMem})
	runWith(t, p, pipeline.Futuristic, ideal)
	if ideal.Stats.BroadcastDeferred != 0 {
		t.Error("ideal mode deferred an untaint")
	}
}

// TestShadowL1StoreLoadUntaint: public data stored then reloaded is
// untainted through the shadow L1 (§6.8), but tainted without it.
func TestShadowL1StoreLoadUntaint(t *testing.T) {
	src := `
  movi r1, 0x4000
  movi r2, 42
  st r2, 0(r1)      ; public data written: bytes untaint
  movi r9, 300
warm:
  addi r9, r9, -1
  bne r9, r0, warm
  ld r3, 0(r1)      ; reads untainted bytes -> r3 public
  ld r4, 0(r3)      ; can execute speculatively only if r3 public
  halt
`
	p := asm.MustAssemble("shadow", src)
	with := taint.NewSPT(taint.SPTConfig{Method: taint.UntaintBwd, Shadow: taint.ShadowL1, BroadcastWidth: 3})
	runWith(t, p, pipeline.Futuristic, with)
	if with.Stats.Events[taint.EvShadowLoad] == 0 {
		t.Error("no shadow-load untaint events with shadow L1")
	}
	without := taint.NewSPT(taint.SPTConfig{Method: taint.UntaintBwd, Shadow: taint.NoShadow, BroadcastWidth: 3})
	runWith(t, p, pipeline.Futuristic, without)
	if without.Stats.Events[taint.EvShadowLoad] != 0 {
		t.Error("shadow-load events without a shadow structure")
	}
}

// TestSTLForwardPropagation: a load forwarded from a store with public
// data untaints once STLPublic holds.
func TestSTLForwardPropagation(t *testing.T) {
	p := asm.MustAssemble("stlf", `
  movi r1, 0x4000
  movi r2, 7
  st r2, 0(r1)
  ld r3, 0(r1)      ; forwarded from the store
  ld r4, 0(r3)      ; usable speculatively once r3 untaints
  halt
`)
	spt := taint.NewSPT(taint.SPTConfig{Method: taint.UntaintBwd, BroadcastWidth: 3})
	c := runWith(t, p, pipeline.Futuristic, spt)
	if c.Stats.STLForwards == 0 {
		t.Skip("no forwarding occurred (timing)")
	}
	if spt.Stats.Events[taint.EvSTLForward] == 0 {
		t.Error("no STL forward untaint events")
	}
}

// TestSTTLoadOutputUntaintsAtVP: STT s-untaints a load's output when the
// load reaches the VP, and dependent transmitters then execute.
func TestSTTSemantics(t *testing.T) {
	p := asm.MustAssemble("stt", `
  movi r1, 0x6000
  ld r2, 0(r1)
  ld r3, 0(r2)      ; dependent: delayed until r2 s-untaints
  halt
`)
	stt := taint.NewSTT()
	c := runWith(t, p, pipeline.Futuristic, stt)
	if stt.Stats.Untaints == 0 {
		t.Error("no s-untaint events")
	}
	_ = c
}

// TestSTTFasterThanSPTOnSecretReuse: STT does not protect
// non-speculatively accessed data, so it runs constant-time-style code
// faster than SPT (the price SPT pays for its broader protection scope).
func TestSTTNarrowerScopeIsFaster(t *testing.T) {
	// A loop whose loads' addresses come from architectural registers
	// (non-speculative): STT never delays them; SPT must prove them public
	// first.
	b := asm.NewBuilder("scope")
	quads := make([]uint64, 4096)
	b.DataQuads(0x20000, quads)
	b.Movi(1, 0x20000)
	b.Movi(3, 2000)
	b.Label("top")
	b.Ld(4, 1, 0)
	b.Ld(5, 1, 8)
	b.Add(6, 4, 5)
	b.Addi(1, 1, 16)
	b.Addi(3, 3, -1)
	b.Bne(3, isa.Zero, "top")
	b.Halt()
	p := b.MustBuild()

	stt := runWith(t, p, pipeline.Futuristic, taint.NewSTT())
	spt := runWith(t, p, pipeline.Futuristic, taint.NewSPT(taint.DefaultSPTConfig()))
	if stt.Stats.Cycles > spt.Stats.Cycles {
		t.Errorf("STT (%d cycles) should not be slower than SPT (%d)", stt.Stats.Cycles, spt.Stats.Cycles)
	}
}

// TestTaintMonotonicityInFlight: within an instruction's lifetime a
// register may go tainted -> untainted but never back (paper §6.6
// convergence property). We sample a running core every cycle.
func TestTaintMonotonicityInFlight(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := workloads.RandomProgram(rng.Int63(), 80)
	cfg := pipeline.DefaultConfig()
	spt := taint.NewSPT(taint.DefaultSPTConfig())
	c, err := pipeline.New(cfg, p, mem.NewHierarchy(mem.DefaultHierarchyConfig()), spt)
	if err != nil {
		t.Fatal(err)
	}
	// Track (seq, reg) -> was untainted.
	type key struct {
		seq uint64
		reg pipeline.PhysReg
	}
	wasUntainted := make(map[key]bool)
	for i := 0; i < 300_000 && !c.Finished(); i++ {
		c.Step()
		for j := 0; j < c.ROBLen(); j++ {
			di := c.ROBAt(j)
			for _, r := range []pipeline.PhysReg{di.Src1, di.Src2, di.Dst} {
				if r == pipeline.NoReg {
					continue
				}
				k := key{di.Seq, r}
				if spt.Tainted(r) {
					if wasUntainted[k] {
						t.Fatalf("register %d of seq %d was retainted", r, di.Seq)
					}
				} else {
					wasUntainted[k] = true
				}
			}
		}
	}
	if !c.Finished() {
		t.Fatal("did not finish")
	}
}

// TestFig9HistogramPopulated: the ideal configuration records per-cycle
// untaint counts.
func TestFig9HistogramPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := workloads.RandomProgram(rng.Int63(), 100)
	spt := taint.NewSPT(taint.SPTConfig{Method: taint.UntaintIdeal, Shadow: taint.ShadowMem})
	runWith(t, p, pipeline.Futuristic, spt)
	if spt.Stats.UntaintingCycles == 0 {
		t.Fatal("no untainting cycles recorded")
	}
	var total uint64
	for _, v := range spt.Stats.UntaintHist {
		total += v
	}
	if total != spt.Stats.UntaintingCycles {
		t.Fatalf("histogram total %d != untainting cycles %d", total, spt.Stats.UntaintingCycles)
	}
}

// TestSecureBaselineDelaysEverything: under the secure baseline every
// speculative transmitter waits, so delays must be recorded and IPC must
// drop versus unsafe.
func TestSecureBaselineDelaysEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := workloads.RandomProgram(rng.Int63(), 100)
	unsafe := runWith(t, p, pipeline.Futuristic, nil)
	secure := runWith(t, p, pipeline.Futuristic, taint.NewSPT(taint.SPTConfig{Method: taint.UntaintNone}))
	if secure.Stats.TransmitterDelays == 0 {
		t.Error("secure baseline recorded no transmitter delays")
	}
	if secure.Stats.Cycles < unsafe.Stats.Cycles {
		t.Errorf("secure (%d) faster than unsafe (%d)", secure.Stats.Cycles, unsafe.Stats.Cycles)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := taint.EventKind(0); k < taint.NumEvents; k++ {
		if k.String() == "" {
			t.Fatalf("event %d has no name", k)
		}
	}
	if taint.UntaintNone.String() != "none" || taint.UntaintIdeal.String() != "ideal" {
		t.Fatal("method names wrong")
	}
	if taint.ShadowL1.String() != "shadowl1" {
		t.Fatal("shadow names wrong")
	}
}
