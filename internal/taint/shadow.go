package taint

// ShadowMode selects how far taint is tracked into the memory system
// (paper Table 2).
type ShadowMode uint8

const (
	// NoShadow: register taint only; every load from memory is tainted.
	NoShadow ShadowMode = iota
	// ShadowL1: byte-granularity taint for lines resident in the L1D,
	// mirrored in an in-core shadow structure (§6.8, §7.5). Taint is lost
	// on eviction: refills are fully tainted.
	ShadowL1
	// ShadowMem: idealized byte-granularity taint for all of memory.
	ShadowMem
)

func (m ShadowMode) String() string {
	switch m {
	case NoShadow:
		return "noshadow"
	case ShadowL1:
		return "shadowl1"
	case ShadowMem:
		return "shadowmem"
	}
	return "shadow(?)"
}

const lineBytes = 64

// lineTaint is the per-byte taint of one cache line; true = tainted.
type lineTaint [lineBytes]bool

func allTainted() *lineTaint {
	var lt lineTaint
	for i := range lt {
		lt[i] = true
	}
	return &lt
}

// shadow tracks byte-granularity memory taint under either shadow mode.
type shadow struct {
	mode  ShadowMode
	lines map[uint64]*lineTaint
	// pool recycles evicted line-taint objects so steady-state fill/evict
	// churn performs no allocation. A recycled line is re-tainted before
	// reuse, making it indistinguishable from a fresh one.
	pool []*lineTaint
}

func newShadow(mode ShadowMode) *shadow {
	return &shadow{mode: mode, lines: make(map[uint64]*lineTaint)}
}

func lineAddrOf(addr uint64) uint64 { return addr &^ (lineBytes - 1) }

// newLine returns an all-tainted line, drawing from the recycle pool when
// possible.
func (s *shadow) newLine() *lineTaint {
	n := len(s.pool)
	if n == 0 {
		return allTainted()
	}
	lt := s.pool[n-1]
	s.pool = s.pool[:n-1]
	for i := range lt {
		lt[i] = true
	}
	return lt
}

// onFill handles an L1D line installation. Under ShadowL1, a fill makes
// the whole line tainted (taint is not tracked below the L1). Under
// ShadowMem, memory taint is persistent and fills change nothing.
func (s *shadow) onFill(lineAddr uint64) {
	if s.mode != ShadowL1 {
		return
	}
	if lt, ok := s.lines[lineAddr]; ok {
		for i := range lt {
			lt[i] = true
		}
		return
	}
	s.lines[lineAddr] = s.newLine()
}

// onEvict handles an L1D eviction: under ShadowL1 the taint is dropped
// (the line's bytes become implicitly tainted).
func (s *shadow) onEvict(lineAddr uint64) {
	if s.mode != ShadowL1 {
		return
	}
	if lt, ok := s.lines[lineAddr]; ok {
		s.pool = append(s.pool, lt)
		delete(s.lines, lineAddr)
	}
}

// rangeTainted reports whether any byte of [addr, addr+size) is tainted.
func (s *shadow) rangeTainted(addr uint64, size int) bool {
	if s.mode == NoShadow {
		return true
	}
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		lt, ok := s.lines[lineAddrOf(a)]
		if !ok {
			return true // absent line: all bytes tainted
		}
		if lt[a%lineBytes] {
			return true
		}
	}
	return false
}

// setRange sets the taint of [addr, addr+size) to tainted. Returns true if
// any byte's taint changed.
func (s *shadow) setRange(addr uint64, size int, tainted bool) bool {
	if s.mode == NoShadow {
		return false
	}
	changed := false
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		la := lineAddrOf(a)
		lt, ok := s.lines[la]
		if !ok {
			if tainted {
				continue // absent = already tainted
			}
			lt = s.newLine()
			s.lines[la] = lt
		}
		if lt[a%lineBytes] != tainted {
			lt[a%lineBytes] = tainted
			changed = true
		}
	}
	return changed
}

// trackedLines reports the number of lines with explicit taint state.
func (s *shadow) trackedLines() int { return len(s.lines) }
