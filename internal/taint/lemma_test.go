package taint_test

import (
	"math/rand"
	"testing"

	"spt/internal/attack"
	"spt/internal/mem"
	"spt/internal/pipeline"
	"spt/internal/taint"
	"spt/internal/workloads"
)

// TestLemma1 checks the paper's §8 Lemma 1 dynamically: if an
// instruction's physical output register becomes untainted while the
// instruction has not yet produced it (not ready), then the instruction
// has reached the visibility point. The lemma's proof cases cover loads
// (whose outputs are never untainted by the forward rule); ALU outputs
// with all-public inputs are untainted at rename by design, which is
// sound (the attacker can compute them) but outside the lemma's scope —
// so the check is applied to loads, where the shadow-L1 rule depends on
// it (§6.8 footnote 5).
func TestLemma1(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 6; trial++ {
		p := workloads.RandomProgram(rng.Int63(), 80)
		for _, model := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
			spt := taint.NewSPT(taint.DefaultSPTConfig())
			cfg := pipeline.DefaultConfig()
			cfg.Model = model
			c, err := pipeline.New(cfg, p, mem.NewHierarchy(mem.DefaultHierarchyConfig()), spt)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2_000_000 && !c.Finished(); i++ {
				c.Step()
				for j := 0; j < c.ROBLen(); j++ {
					di := c.ROBAt(j)
					if !di.Ins.IsLoad() || di.Dst == pipeline.NoReg || c.RegReady(di.Dst) {
						continue
					}
					if !spt.Tainted(di.Dst) && !di.AtVP {
						t.Fatalf("%v trial %d: Lemma 1 violated at cycle %d: seq %d (%v) output p%d untainted before ready, not at VP",
							model, trial, c.Cycle(), di.Seq, di.Ins, di.Dst)
					}
				}
			}
			if !c.Finished() {
				t.Fatal("did not finish")
			}
		}
	}
}

// TestROBContentsPublic checks Lemma 2 property (1): the sequence of
// instructions entering the ROB (the attacker-visible PC stream) is
// independent of tainted data. We run the non-speculative-secret victim
// with two different secrets under full SPT and require identical
// rename-event streams, cycle by cycle.
func TestROBContentsPublic(t *testing.T) {
	trace := func(secret byte) []string {
		spt := taint.NewSPT(taint.DefaultSPTConfig())
		c, err := pipeline.New(pipeline.DefaultConfig(), attack.NonSpecSecretProgram(secret), mem.NewHierarchy(mem.DefaultHierarchyConfig()), spt)
		if err != nil {
			t.Fatal(err)
		}
		rec := &renameRecorder{}
		c.Tracer = rec
		if err := c.Run(1_000_000, 50_000_000); err != nil {
			t.Fatal(err)
		}
		return rec.stream
	}
	a := trace(0x01)
	b := trace(0xFE)
	if len(a) != len(b) {
		t.Fatalf("rename streams differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rename streams diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

type renameRecorder struct{ stream []string }

func (r *renameRecorder) Event(cycle uint64, di *pipeline.DynInst, stage string) {
	if stage == "rename" || stage == "squash" {
		r.stream = append(r.stream, stageKey(cycle, di.PC, stage))
	}
}

func stageKey(cycle, pc uint64, stage string) string {
	return stage + "@" + itoa(cycle) + ":" + itoa(pc)
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
