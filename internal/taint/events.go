// Package taint implements the paper's protection schemes as pipeline
// policies: SPT (Speculative Privacy Tracking, §5–§7) with its forward and
// backward untaint algebra, bounded untaint broadcast, store-to-load
// forwarding propagation gated on STLPublic, and shadow L1 / shadow memory
// taint tracking; STT (Speculative Taint Tracking, MICRO'19) as the
// narrower-scope comparison point; and the SecureBaseline (SPT machinery
// with untainting disabled: transmitters and branch resolutions simply wait
// for the visibility point).
package taint

import "fmt"

// EventKind classifies register untaint events (paper Figure 8).
type EventKind uint8

const (
	// EvVPDeclass: a transmitter/branch reached the visibility point and
	// its leaked operands were declassified (§6.6).
	EvVPDeclass EventKind = iota
	// EvLoadImm: an output determined only by ROB contents (immediate
	// moves, link addresses) was public at rename (§6.5).
	EvLoadImm
	// EvForward: all inputs untainted ⇒ output untainted (§6.6).
	EvForward
	// EvBackward: output + all-but-one inputs untainted ⇒ last input
	// untainted (§6.6).
	EvBackward
	// EvSTLForward: store data untaint propagated to a forwarded load's
	// output once STLPublic held (§6.7).
	EvSTLForward
	// EvSTLBackward: forwarded load output untaint propagated back to the
	// store's data operand once STLPublic held (§6.7).
	EvSTLBackward
	// EvShadowLoad: a load read fully-untainted bytes from the shadow
	// L1/memory, untainting its output (§6.8).
	EvShadowLoad

	NumEvents
)

var eventNames = [...]string{
	EvVPDeclass:   "vp-declassify",
	EvLoadImm:     "load-imm",
	EvForward:     "forward",
	EvBackward:    "backward",
	EvSTLForward:  "stl-forward",
	EvSTLBackward: "stl-backward",
	EvShadowLoad:  "shadow-load",
}

func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Stats aggregates taint-engine counters.
type Stats struct {
	// Events counts register untaint events by kind.
	Events [NumEvents]uint64
	// UntaintHist[i] counts untainting cycles in which i+1 registers were
	// untainted; the last bucket is "10 or more" (paper Figure 9).
	UntaintHist [10]uint64
	// UntaintingCycles counts cycles with at least one untaint event.
	UntaintingCycles uint64
	// BroadcastDeferred counts untaint-ready registers that had to wait
	// for a later cycle because the broadcast width was exhausted.
	BroadcastDeferred uint64
	// MemUntaints counts shadow L1/memory byte-range untaint operations.
	MemUntaints uint64
	// TaintedAtRename counts instructions whose output was tainted at
	// rename (loads, and ops with at least one tainted input).
	TaintedAtRename uint64
	// STLPublicHits counts store-to-load forwards that could happen openly
	// because the STLPublic condition (§6.7) already held.
	STLPublicHits uint64
}

// TotalUntaints sums register untaint events across kinds.
func (s *Stats) TotalUntaints() uint64 {
	var t uint64
	for _, v := range s.Events {
		t += v
	}
	return t
}
