package taint

import (
	"fmt"

	"spt/internal/stats"
)

// RegisterStats implements pipeline.StatsRegistrar: the SPT (or
// SecureBaseline) untaint engine publishes its counters under "spt.".
func (s *SPT) RegisterStats(r *stats.Registry) {
	r.Scalar("spt.tainted_at_rename", "instructions whose output was tainted at rename", &s.Stats.TaintedAtRename)
	for k := EventKind(0); k < NumEvents; k++ {
		r.Scalar("spt.untaint."+k.String(),
			fmt.Sprintf("register untaints via the %s rule", k),
			&s.Stats.Events[k])
	}
	r.Scalar("spt.untainting_cycles", "cycles with at least one untaint event", &s.Stats.UntaintingCycles)
	r.Scalar("spt.broadcast_deferred", "untaint-ready registers deferred by broadcast width", &s.Stats.BroadcastDeferred)
	r.Scalar("spt.mem_untaints", "shadow L1/memory byte-range untaints", &s.Stats.MemUntaints)
	r.Scalar("spt.stl_public_hits", "store-to-load forwards with STLPublic already holding", &s.Stats.STLPublicHits)
	for i := range s.Stats.UntaintHist {
		label := fmt.Sprintf("%d", i+1)
		if i == len(s.Stats.UntaintHist)-1 {
			label += "+"
		}
		r.Scalar("spt.untaints_per_cycle."+label,
			"untainting cycles that cleared "+label+" registers",
			&s.Stats.UntaintHist[i])
	}
}

// RegisterStats implements pipeline.StatsRegistrar for STT.
func (t *STT) RegisterStats(r *stats.Registry) {
	r.Scalar("stt.tainted_at_rename", "instructions whose output was s-tainted at rename", &t.Stats.TaintedAtRename)
	r.Scalar("stt.untaints", "registers s-untainted after a load crossed the VP", &t.Stats.Untaints)
	r.Scalar("stt.stl_public_hits", "store-to-load forwards with all addresses s-untainted", &t.Stats.STLPublicHits)
}
