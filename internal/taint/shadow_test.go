package taint

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShadowRoundTrip(t *testing.T) {
	f := func(addrRaw uint64, size8 uint8, tainted bool) bool {
		s := newShadow(ShadowMem)
		addr := addrRaw % (1 << 30)
		size := int(size8%8) + 1
		s.setRange(addr, size, tainted)
		return s.rangeTainted(addr, size) == tainted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestShadowAbsentLineIsTainted(t *testing.T) {
	s := newShadow(ShadowMem)
	if !s.rangeTainted(0x1234, 8) {
		t.Fatal("untracked memory must read as tainted")
	}
	if s.setRange(0x1234, 4, true) {
		t.Fatal("tainting already-tainted bytes reported a change")
	}
}

func TestShadowCrossLineRange(t *testing.T) {
	s := newShadow(ShadowMem)
	addr := uint64(lineBytes - 4) // spans two lines
	if !s.setRange(addr, 8, false) {
		t.Fatal("untaint reported no change")
	}
	if s.rangeTainted(addr, 8) {
		t.Fatal("cross-line range still tainted")
	}
	// One byte past the range must still be tainted.
	if !s.rangeTainted(addr+8, 1) {
		t.Fatal("adjacent byte untainted")
	}
	if s.trackedLines() != 2 {
		t.Fatalf("tracked lines = %d, want 2", s.trackedLines())
	}
}

func TestShadowL1FillAndEvict(t *testing.T) {
	s := newShadow(ShadowL1)
	s.setRange(0x100, 8, false)
	if s.rangeTainted(0x100, 8) {
		t.Fatal("bytes should be untainted")
	}
	// A fill re-taints the whole line (taint is lost below the L1).
	s.onFill(lineAddrOf(0x100))
	if !s.rangeTainted(0x100, 1) {
		t.Fatal("fill did not re-taint")
	}
	s.setRange(0x100, 8, false)
	s.onEvict(lineAddrOf(0x100))
	if !s.rangeTainted(0x100, 1) {
		t.Fatal("evicted line should read tainted")
	}
	if s.trackedLines() != 0 {
		t.Fatal("eviction leaked shadow state")
	}
}

func TestShadowNoShadowAlwaysTainted(t *testing.T) {
	s := newShadow(NoShadow)
	s.setRange(0x40, 8, false)
	if !s.rangeTainted(0x40, 8) {
		t.Fatal("NoShadow must treat all memory as tainted")
	}
}

func TestShadowPartialUntaintKeepsNeighborsTainted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		s := newShadow(ShadowMem)
		base := uint64(rng.Intn(1 << 20))
		size := 1 + rng.Intn(8)
		s.setRange(base, size, false)
		for off := -2; off < size+2; off++ {
			a := base + uint64(off)
			if off < 0 {
				a = base - uint64(-off)
			}
			want := off >= 0 && off < size
			if got := !s.rangeTainted(a, 1); got != want {
				t.Fatalf("base=%#x size=%d off=%d: untainted=%v want %v", base, size, off, got, want)
			}
		}
	}
}
