package predictor

// Unit bundles the front-end prediction structures and owns the speculative
// global history. The fetch stage calls the Predict* methods; the branch
// unit calls Resolve when resolution effects are permitted (under SPT/STT,
// only once the predicate is untainted — keeping tainted data out of
// predictor state, per the paper's prediction-based implicit channel rule).
type Unit struct {
	Tage *TAGE
	Loop *LoopPredictor
	Btb  *BTB
	Ras  *RAS
	Ind  *Indirect

	// Hist is the speculative global history used for lookups.
	Hist History

	Stats UnitStats
}

// UnitStats counts outcomes per branch class.
type UnitStats struct {
	CondPredicts   uint64
	CondMispredict uint64
	LoopOverrides  uint64
	JumpPredicts   uint64
	JumpMispredict uint64
}

// NewUnit builds the default front end (LTAGE-class sizes).
func NewUnit() *Unit {
	return &Unit{
		Tage: DefaultTAGE(),
		Loop: NewLoopPredictor(256),
		Btb:  NewBTB(4096),
		Ras:  NewRAS(32),
		Ind:  NewIndirect(512),
	}
}

// Checkpoint is the per-branch snapshot needed to look up, train, and — on
// a squash — repair the front end.
type Checkpoint struct {
	PC         uint64
	Pred       Prediction
	HistBefore History
	RasSnap    RASSnapshot
	Taken      bool   // predicted direction
	Target     uint64 // predicted next PC
	UsedLoop   bool
}

// PredictCond predicts the conditional branch at pc and speculatively
// updates history, filling cp in place. The checkpoint must be passed to
// Resolve (to train) and, on a misprediction, to Recover. Checkpoints are
// filled through a pointer rather than returned: they are ~160 bytes and
// every retired branch moves one through predict and resolve, so by-value
// passing made struct copying a measurable slice of functional warming.
func (u *Unit) PredictCond(pc uint64, cp *Checkpoint) {
	u.Stats.CondPredicts++
	*cp = Checkpoint{PC: pc, HistBefore: u.Hist, RasSnap: u.Ras.Snapshot()}
	u.Tage.Predict(pc, u.Hist, &cp.Pred)
	cp.Taken = cp.Pred.Taken
	if loopTaken, confident := u.Loop.Predict(pc); confident {
		cp.Taken = loopTaken
		cp.UsedLoop = true
		u.Stats.LoopOverrides++
	}
	if cp.Taken {
		if target, ok := u.Btb.Lookup(pc); ok {
			cp.Target = target
		} else {
			// No target known: fetch falls through; the branch will
			// mispredict if actually taken.
			cp.Taken = false
			cp.Target = pc + 1
		}
	} else {
		cp.Target = pc + 1
	}
	u.Hist = u.Hist.Update(pc, cp.Taken)
}

// PredictJump predicts an unconditional control transfer (JAL/JALR) at pc.
// directTarget is the statically-known target for JAL (ok=false for JALR).
// cp is filled in place (see PredictCond).
func (u *Unit) PredictJump(pc uint64, directTarget uint64, direct, isCall, isReturn bool, cp *Checkpoint) {
	u.Stats.JumpPredicts++
	*cp = Checkpoint{PC: pc, HistBefore: u.Hist, RasSnap: u.Ras.Snapshot(), Taken: true}
	switch {
	case direct:
		cp.Target = directTarget
	case isReturn:
		cp.Target = u.Ras.Pop()
	default:
		if target, ok := u.Ind.Lookup(pc, u.Hist); ok {
			cp.Target = target
		} else if target, ok := u.Btb.Lookup(pc); ok {
			cp.Target = target
		} else {
			cp.Target = pc + 1 // no idea: stall-free guess
		}
	}
	if isCall {
		u.Ras.Push(pc + 1)
	}
	u.Hist = u.Hist.Update(pc, true)
}

// ResolveCond trains the structures with a conditional branch's outcome.
// Mispredicted reports whether the prediction was wrong. Train only when
// the protection policy permits resolution effects.
func (u *Unit) ResolveCond(cp *Checkpoint, taken bool, target uint64) (mispredicted bool) {
	mispredicted = taken != cp.Taken
	if mispredicted {
		u.Stats.CondMispredict++
	}
	u.Tage.Update(cp.PC, cp.HistBefore, &cp.Pred, taken)
	u.Loop.Update(cp.PC, taken)
	if taken {
		u.Btb.Insert(cp.PC, target)
	}
	return mispredicted
}

// ResolveJump trains the structures with an indirect jump's target.
func (u *Unit) ResolveJump(cp *Checkpoint, target uint64, indirect bool) (mispredicted bool) {
	mispredicted = target != cp.Target
	if mispredicted {
		u.Stats.JumpMispredict++
	}
	if indirect {
		u.Ind.Update(cp.PC, cp.HistBefore, target)
		u.Btb.Insert(cp.PC, target)
	}
	return mispredicted
}

// Recover repairs the speculative state after squashing from a
// mispredicted control-flow instruction: history is rebuilt from the
// checkpoint with the correct outcome, and the RAS is restored.
func (u *Unit) Recover(cp *Checkpoint, actualTaken bool) {
	u.Hist = cp.HistBefore.Update(cp.PC, actualTaken)
	u.Ras.Restore(cp.RasSnap)
}
