package predictor

import (
	"math/rand"
	"testing"
)

// trainCond runs a direction sequence through PredictCond/ResolveCond and
// reports the accuracy over the last half of the run.
func trainCond(u *Unit, pc uint64, outcomes []bool) float64 {
	correct, counted := 0, 0
	for i, taken := range outcomes {
		var cp Checkpoint
		u.PredictCond(pc, &cp)
		target := pc + 10
		if !taken {
			target = pc + 1
		}
		misp := u.ResolveCond(&cp, taken, target)
		if misp {
			u.Recover(&cp, taken)
		}
		if i >= len(outcomes)/2 {
			counted++
			if !misp {
				correct++
			}
		}
	}
	return float64(correct) / float64(counted)
}

func TestTAGELearnsAlwaysTaken(t *testing.T) {
	u := NewUnit()
	outcomes := make([]bool, 200)
	for i := range outcomes {
		outcomes[i] = true
	}
	if acc := trainCond(u, 100, outcomes); acc < 0.99 {
		t.Fatalf("always-taken accuracy = %.2f", acc)
	}
}

func TestTAGELearnsAlternating(t *testing.T) {
	u := NewUnit()
	outcomes := make([]bool, 400)
	for i := range outcomes {
		outcomes[i] = i%2 == 0
	}
	if acc := trainCond(u, 200, outcomes); acc < 0.95 {
		t.Fatalf("alternating accuracy = %.2f", acc)
	}
}

func TestTAGELearnsHistoryCorrelation(t *testing.T) {
	// Pattern TTNTTN... requires 2 bits of history; bimodal alone can't
	// exceed ~2/3 accuracy.
	u := NewUnit()
	outcomes := make([]bool, 600)
	for i := range outcomes {
		outcomes[i] = i%3 != 2
	}
	if acc := trainCond(u, 300, outcomes); acc < 0.9 {
		t.Fatalf("period-3 accuracy = %.2f", acc)
	}
}

func TestLoopPredictorLearnsTripCount(t *testing.T) {
	lp := NewLoopPredictor(64)
	pc := uint64(42)
	// 8 visits of a 7-iteration loop (6 taken, 1 not-taken).
	for visit := 0; visit < 8; visit++ {
		for it := 0; it < 7; it++ {
			lp.Update(pc, it < 6)
		}
	}
	// Now confident: predicts taken for 6 iterations, not-taken on the 7th.
	for it := 0; it < 7; it++ {
		taken, confident := lp.Predict(pc)
		if !confident {
			t.Fatalf("iteration %d: not confident", it)
		}
		want := it < 6
		if taken != want {
			t.Fatalf("iteration %d: predict %v, want %v", it, taken, want)
		}
		lp.Update(pc, want)
	}
}

func TestLoopPredictorLosesConfidenceOnIrregularity(t *testing.T) {
	lp := NewLoopPredictor(64)
	pc := uint64(7)
	for visit := 0; visit < 5; visit++ {
		for it := 0; it < 4; it++ {
			lp.Update(pc, it < 3)
		}
	}
	if _, confident := lp.Predict(pc); !confident {
		t.Fatal("should be confident after regular visits")
	}
	// One irregular visit (different trip count).
	for it := 0; it < 9; it++ {
		lp.Update(pc, it < 8)
	}
	if _, confident := lp.Predict(pc); confident {
		t.Fatal("should lose confidence after trip-count change")
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(16)
	if _, ok := b.Lookup(5); ok {
		t.Fatal("cold BTB hit")
	}
	b.Insert(5, 99)
	if target, ok := b.Lookup(5); !ok || target != 99 {
		t.Fatalf("lookup = %d, %v", target, ok)
	}
	// Aliasing entry replaces.
	b.Insert(5+16, 123)
	if _, ok := b.Lookup(5); ok {
		t.Fatal("aliased entry still hits old tag")
	}
}

func TestRASPushPop(t *testing.T) {
	r := NewRAS(4)
	r.Push(10)
	r.Push(20)
	if got := r.Pop(); got != 20 {
		t.Fatalf("pop = %d, want 20", got)
	}
	if got := r.Pop(); got != 10 {
		t.Fatalf("pop = %d, want 10", got)
	}
	if got := r.Pop(); got != 0 {
		t.Fatalf("empty pop = %d, want 0", got)
	}
}

func TestRASSnapshotRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(1)
	r.Push(2)
	snap := r.Snapshot()
	r.Pop()
	r.Push(77)
	r.Push(88)
	r.Restore(snap)
	if got := r.Pop(); got != 2 {
		t.Fatalf("restored pop = %d, want 2", got)
	}
	if got := r.Pop(); got != 1 {
		t.Fatalf("restored pop = %d, want 1", got)
	}
}

func TestRASWrapAround(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites 1
	if got := r.Pop(); got != 3 {
		t.Fatalf("pop = %d, want 3", got)
	}
	if got := r.Pop(); got != 2 {
		t.Fatalf("pop = %d, want 2", got)
	}
}

func TestIndirectPredictorHistoryDisambiguation(t *testing.T) {
	ip := NewIndirect(256)
	pc := uint64(50)
	h1 := History{G: 0b1010}
	h2 := History{G: 0b0101}
	ip.Update(pc, h1, 111)
	ip.Update(pc, h2, 222)
	if got, ok := ip.Lookup(pc, h1); !ok || got != 111 {
		t.Fatalf("h1 target = %d, %v", got, ok)
	}
	if got, ok := ip.Lookup(pc, h2); !ok || got != 222 {
		t.Fatalf("h2 target = %d, %v", got, ok)
	}
}

func TestUnitJumpRASFlow(t *testing.T) {
	u := NewUnit()
	// Call at pc 10 to 100: RAS should hold 11.
	var cp Checkpoint
	u.PredictJump(10, 100, true, true, false, &cp)
	if cp.Target != 100 {
		t.Fatalf("call target = %d", cp.Target)
	}
	// Return: predicted target is the pushed return address.
	var cp2 Checkpoint
	u.PredictJump(105, 0, false, false, true, &cp2)
	if cp2.Target != 11 {
		t.Fatalf("return target = %d, want 11", cp2.Target)
	}
}

func TestUnitIndirectTrainsAfterMiss(t *testing.T) {
	u := NewUnit()
	var cp Checkpoint
	u.PredictJump(30, 0, false, false, false, &cp)
	misp := u.ResolveJump(&cp, 300, true)
	if !misp {
		t.Fatal("cold indirect should mispredict")
	}
	u.Recover(&cp, true)
	var cp2 Checkpoint
	u.PredictJump(30, 0, false, false, false, &cp2)
	if cp2.Target != 300 {
		t.Fatalf("trained indirect target = %d, want 300", cp2.Target)
	}
}

func TestUnitRecoverRestoresHistory(t *testing.T) {
	u := NewUnit()
	var cp Checkpoint
	u.PredictCond(77, &cp) // predicted not-taken initially
	// History speculatively updated; suppose the branch was actually taken.
	u.ResolveCond(&cp, true, 99)
	u.Recover(&cp, true)
	want := cp.HistBefore.Update(77, true)
	if u.Hist != want {
		t.Fatalf("history after recover = %+v, want %+v", u.Hist, want)
	}
}

func TestTAGEStress(t *testing.T) {
	// Many branches with per-PC biased outcomes: overall accuracy should be
	// well above the bias floor.
	u := NewUnit()
	rng := rand.New(rand.NewSource(3))
	bias := make(map[uint64]float64)
	for pc := uint64(0); pc < 64; pc++ {
		bias[pc] = rng.Float64()
	}
	correct, total := 0, 0
	for i := 0; i < 20000; i++ {
		pc := uint64(rng.Intn(64))
		taken := rng.Float64() < bias[pc]
		var cp Checkpoint
		u.PredictCond(pc, &cp)
		misp := u.ResolveCond(&cp, taken, pc+5)
		if misp {
			u.Recover(&cp, taken)
		}
		if i > 10000 {
			total++
			if !misp {
				correct++
			}
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.65 {
		t.Fatalf("stress accuracy = %.3f, want >= 0.65", acc)
	}
}

func TestFoldBounds(t *testing.T) {
	for _, hl := range []int{1, 7, 31, 63, 64} {
		for _, ob := range []int{5, 10, 12} {
			v := fold(^uint64(0), hl, ob)
			if v >= 1<<uint(ob) {
				t.Fatalf("fold(%d,%d) = %#x exceeds %d bits", hl, ob, v, ob)
			}
		}
	}
}
