package predictor

// LoopPredictor detects branches with a regular trip count (the "L" in
// LTAGE) and overrides TAGE once confident. Loop branches in the simulated
// ISA are backward conditional branches; the predictor learns the iteration
// count between not-taken outcomes.
type LoopPredictor struct {
	entries []loopEntry
	mask    uint64
}

type loopEntry struct {
	tag        uint32
	tripCount  uint32 // learned iterations per loop visit
	currentIt  uint32
	confidence uint8 // confident when saturated
	valid      bool
}

const loopConfident = 3

// NewLoopPredictor builds a loop predictor with entries slots (power of 2).
func NewLoopPredictor(entries int) *LoopPredictor {
	return &LoopPredictor{entries: make([]loopEntry, entries), mask: uint64(entries - 1)}
}

func (lp *LoopPredictor) entry(pc uint64) *loopEntry {
	return &lp.entries[pc&lp.mask]
}

// Predict returns (taken, confident). Callers should only use taken when
// confident is true.
func (lp *LoopPredictor) Predict(pc uint64) (bool, bool) {
	e := lp.entry(pc)
	if !e.valid || uint32(pc>>10) != e.tag || e.confidence < loopConfident {
		return false, false
	}
	// Predict taken until the learned trip count is reached.
	return e.currentIt+1 < e.tripCount, true
}

// Update trains the loop predictor with the resolved outcome.
func (lp *LoopPredictor) Update(pc uint64, taken bool) {
	e := lp.entry(pc)
	tag := uint32(pc >> 10)
	if !e.valid || e.tag != tag {
		*e = loopEntry{tag: tag, valid: true}
	}
	e.currentIt++
	if taken {
		return
	}
	// Loop exit: currentIt is the observed trip count for this visit.
	if e.tripCount == e.currentIt && e.tripCount > 0 {
		if e.confidence < loopConfident {
			e.confidence++
		}
	} else {
		e.tripCount = e.currentIt
		e.confidence = 0
	}
	e.currentIt = 0
}

// BTB is a direct-mapped branch target buffer. Fetch uses it to find the
// taken target of a predicted-taken branch or jump in the same cycle.
type BTB struct {
	tags    []uint64
	targets []uint64
	valid   []bool
	mask    uint64

	Stats BTBStats
}

// BTBStats counts BTB events.
type BTBStats struct {
	Lookups uint64
	Hits    uint64
}

// NewBTB builds a BTB with entries slots (power of two).
func NewBTB(entries int) *BTB {
	return &BTB{
		tags:    make([]uint64, entries),
		targets: make([]uint64, entries),
		valid:   make([]bool, entries),
		mask:    uint64(entries - 1),
	}
}

// Lookup returns the predicted target for pc.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	b.Stats.Lookups++
	i := pc & b.mask
	if b.valid[i] && b.tags[i] == pc {
		b.Stats.Hits++
		return b.targets[i], true
	}
	return 0, false
}

// Insert records pc's taken target.
func (b *BTB) Insert(pc, target uint64) {
	i := pc & b.mask
	b.tags[i] = pc
	b.targets[i] = target
	b.valid[i] = true
}

// RAS is the return address stack. It is updated speculatively at predict
// time; each in-flight control-flow instruction snapshots it (top-of-stack
// pointer and value) so mispredictions can repair it.
type RAS struct {
	stack []uint64
	top   int // index of next push; stack[top-1] is TOS
}

// NewRAS builds a return address stack with the given depth.
func NewRAS(depth int) *RAS {
	return &RAS{stack: make([]uint64, depth)}
}

// Push records a return address (on a predicted call).
func (r *RAS) Push(addr uint64) {
	r.stack[r.top%len(r.stack)] = addr
	r.top++
}

// Pop predicts a return target. An empty stack predicts 0.
func (r *RAS) Pop() uint64 {
	if r.top == 0 {
		return 0
	}
	r.top--
	return r.stack[r.top%len(r.stack)]
}

// Snapshot captures the RAS state for later repair.
type RASSnapshot struct {
	Top int
	TOS uint64
}

// Snapshot returns the current top pointer and top-of-stack value.
func (r *RAS) Snapshot() RASSnapshot {
	s := RASSnapshot{Top: r.top}
	if r.top > 0 {
		s.TOS = r.stack[(r.top-1)%len(r.stack)]
	}
	return s
}

// Restore rewinds the RAS to a snapshot (approximate repair: the top
// pointer and top value are restored; deeper corruption self-heals, which
// matches hardware RAS behavior).
func (r *RAS) Restore(s RASSnapshot) {
	r.top = s.Top
	if r.top > 0 {
		r.stack[(r.top-1)%len(r.stack)] = s.TOS
	}
}

// Indirect is a tagged indirect-target predictor (ITTAGE-lite): a single
// table indexed by PC hashed with global history.
type Indirect struct {
	tags    []uint64
	targets []uint64
	valid   []bool
	mask    uint64
}

// NewIndirect builds an indirect predictor with entries slots (power of 2).
func NewIndirect(entries int) *Indirect {
	return &Indirect{
		tags:    make([]uint64, entries),
		targets: make([]uint64, entries),
		valid:   make([]bool, entries),
		mask:    uint64(entries - 1),
	}
}

func (ip *Indirect) index(pc uint64, hist History) uint64 {
	return (pc ^ fold(hist.G, 16, 10) ^ (fold(hist.P, 16, 10) << 1)) & ip.mask
}

// Lookup predicts the target of the indirect jump at pc.
func (ip *Indirect) Lookup(pc uint64, hist History) (uint64, bool) {
	i := ip.index(pc, hist)
	if ip.valid[i] && ip.tags[i] == pc {
		return ip.targets[i], true
	}
	return 0, false
}

// Update records the resolved target.
func (ip *Indirect) Update(pc uint64, hist History, target uint64) {
	i := ip.index(pc, hist)
	ip.tags[i] = pc
	ip.targets[i] = target
	ip.valid[i] = true
}
