package predictor

import "spt/internal/stats"

// RegisterStats publishes the front end's counters under the "pred." prefix.
func (u *Unit) RegisterStats(r *stats.Registry) {
	r.Scalar("pred.cond_predicts", "conditional branch predictions", &u.Stats.CondPredicts)
	r.Scalar("pred.cond_mispredicts", "conditional branch mispredictions", &u.Stats.CondMispredict)
	r.Scalar("pred.loop_overrides", "loop predictor overrides of TAGE", &u.Stats.LoopOverrides)
	r.Scalar("pred.jump_predicts", "unconditional transfer predictions", &u.Stats.JumpPredicts)
	r.Scalar("pred.jump_mispredicts", "unconditional transfer mispredictions", &u.Stats.JumpMispredict)
}
