package predictor

// Clone returns a deep copy of the whole front end: TAGE (base and tagged
// tables, allocation RNG), loop predictor, BTB, RAS, indirect predictor,
// speculative history, and counters. A functionally-warmed unit is cloned
// per restored core so detailed regions can train it independently.
func (u *Unit) Clone() *Unit {
	return &Unit{
		Tage:  u.Tage.Clone(),
		Loop:  u.Loop.Clone(),
		Btb:   u.Btb.Clone(),
		Ras:   u.Ras.Clone(),
		Ind:   u.Ind.Clone(),
		Hist:  u.Hist,
		Stats: u.Stats,
	}
}

// ResetStats zeroes the unit's counters (its own, TAGE's, and the BTB's)
// without touching predictor contents.
func (u *Unit) ResetStats() {
	u.Stats = UnitStats{}
	u.Tage.Stats = TAGEStats{}
	u.Btb.Stats = BTBStats{}
}

// Clone returns a deep copy of the TAGE predictor, including the xorshift
// allocation state so a cloned predictor's future behavior is identical.
func (t *TAGE) Clone() *TAGE {
	out := &TAGE{
		base:   append([]int8(nil), t.base...),
		mask:   t.mask,
		rng:    t.rng,
		Stats:  t.Stats,
		tables: make([]*tageTable, len(t.tables)),
	}
	for i, tt := range t.tables {
		out.tables[i] = &tageTable{
			histLen: tt.histLen,
			entries: append([]tageEntry(nil), tt.entries...),
			mask:    tt.mask,
			tagBits: tt.tagBits,
		}
	}
	return out
}

// Clone returns a deep copy of the loop predictor.
func (lp *LoopPredictor) Clone() *LoopPredictor {
	return &LoopPredictor{entries: append([]loopEntry(nil), lp.entries...), mask: lp.mask}
}

// Clone returns a deep copy of the BTB.
func (b *BTB) Clone() *BTB {
	return &BTB{
		tags:    append([]uint64(nil), b.tags...),
		targets: append([]uint64(nil), b.targets...),
		valid:   append([]bool(nil), b.valid...),
		mask:    b.mask,
		Stats:   b.Stats,
	}
}

// Clone returns a deep copy of the return address stack.
func (r *RAS) Clone() *RAS {
	return &RAS{stack: append([]uint64(nil), r.stack...), top: r.top}
}

// Clone returns a deep copy of the indirect-target predictor.
func (ip *Indirect) Clone() *Indirect {
	return &Indirect{
		tags:    append([]uint64(nil), ip.tags...),
		targets: append([]uint64(nil), ip.targets...),
		valid:   append([]bool(nil), ip.valid...),
		mask:    ip.mask,
	}
}
