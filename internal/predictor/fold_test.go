package predictor

import (
	"math/rand"
	"testing"
)

// foldRef is the original chunked-XOR loop. fold's branch-free cascade
// must agree with it bit for bit on every geometry the predictor uses —
// the warming fast path relies on the two being interchangeable.
func foldRef(h uint64, histLen, outBits int) uint64 {
	if histLen < 64 {
		h &= (1 << uint(histLen)) - 1
	}
	var f uint64
	for h != 0 {
		f ^= h & ((1 << uint(outBits)) - 1)
		h >>= uint(outBits)
	}
	return f
}

func TestFoldMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	histLens := []int{1, 3, 4, 8, 16, 32, 63, 64, 128}
	outBits := []int{8, 9, 10, 12, 16}
	inputs := []uint64{0, 1, ^uint64(0), 0x8000000000000000, 0x5555555555555555}
	for i := 0; i < 2000; i++ {
		inputs = append(inputs, rng.Uint64())
	}
	for _, hl := range histLens {
		for _, ob := range outBits {
			for _, h := range inputs {
				if got, want := fold(h, hl, ob), foldRef(h, hl, ob); got != want {
					t.Fatalf("fold(%#x, %d, %d) = %#x, reference %#x", h, hl, ob, got, want)
				}
			}
		}
	}
}

func BenchmarkFold(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var hs [256]uint64
	for i := range hs {
		hs[i] = rng.Uint64()
	}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= fold(hs[i&255], 128, 10)
	}
	_ = sink
}
