// Package predictor implements the front-end prediction structures of the
// simulated core: an LTAGE-class conditional branch predictor (TAGE tagged
// geometric-history tables plus a loop predictor), a branch target buffer,
// a return address stack, and a simple tagged indirect-target predictor.
//
// The paper's Table 1 machine uses gem5's LTAGE; this package implements
// the same predictor family from scratch.
package predictor

import "math/bits"

// tageTable is one tagged component of the TAGE predictor.
type tageTable struct {
	histLen int
	entries []tageEntry
	mask    uint64
	tagBits uint
}

type tageEntry struct {
	tag    uint16
	ctr    int8  // 3-bit signed counter: -4..3, taken if >= 0
	useful uint8 // 2-bit useful counter
}

// TAGE is a tagged geometric-history-length conditional branch predictor
// with a bimodal base table.
type TAGE struct {
	base   []int8 // 2-bit counters: -2..1, taken if >= 0
	mask   uint64
	tables []*tageTable

	rng uint32 // xorshift state for allocation randomization

	Stats TAGEStats
}

// TAGEStats counts predictor events.
type TAGEStats struct {
	Lookups     uint64
	ProviderHit uint64 // prediction came from a tagged table
	Allocs      uint64
}

// History is the speculative global branch history, owned by the fetch
// unit. Each in-flight branch snapshots it so squashes can restore it.
type History struct {
	G uint64 // global taken/not-taken history, newest bit at bit 0
	P uint64 // path history (low bits of branch PCs)
}

// Update shifts the outcome of one branch into the history.
func (h History) Update(pc uint64, taken bool) History {
	h.G <<= 1
	if taken {
		h.G |= 1
	}
	h.P = h.P<<1 | (pc & 1) | ((pc >> 5) & 1)
	return h
}

// NewTAGE builds a predictor with the given base-table size (entries,
// power of two) and tagged-table geometry.
func NewTAGE(baseEntries, taggedEntries int, histLens []int) *TAGE {
	t := &TAGE{
		base: make([]int8, baseEntries),
		mask: uint64(baseEntries - 1),
		rng:  0x2545F491,
	}
	for _, hl := range histLens {
		t.tables = append(t.tables, &tageTable{
			histLen: hl,
			entries: make([]tageEntry, taggedEntries),
			mask:    uint64(taggedEntries - 1),
			tagBits: 10,
		})
	}
	return t
}

// DefaultTAGE returns the configuration used by the simulated machine:
// a 4K-entry bimodal base and six 1K-entry tagged tables with geometric
// history lengths.
func DefaultTAGE() *TAGE {
	return NewTAGE(4096, 1024, []int{4, 8, 16, 32, 64, 128})
}

// fold compresses the low histLen bits of h into outBits by XOR-ing
// successive outBits-wide chunks together. It is the hottest function in
// functional warming (four calls per tagged table per branch), so the
// production geometries (outBits >= 8, i.e. at most eight chunks in a
// 64-bit word) use a branch-free doubling cascade: after h ^= h>>b, bit p
// holds chunk XORs at stride b; two more doublings cover strides 2b and
// 4b, so the low b bits end up with the XOR of all ceil(64/b) <= 8
// chunks. Shifts of 64 or more are well-defined in Go (they yield zero),
// which makes the later steps harmless no-ops once every chunk is folded
// in. Narrower outputs keep the reference loop; fold_test.go cross-checks
// the two forms.
func fold(h uint64, histLen, outBits int) uint64 {
	if histLen < 64 {
		h &= (1 << uint(histLen)) - 1
	}
	b := uint(outBits)
	if b >= 8 {
		h ^= h >> b
		h ^= h >> (2 * b)
		h ^= h >> (4 * b)
		return h & (1<<b - 1)
	}
	var f uint64
	for h != 0 {
		f ^= h & (1<<b - 1)
		h >>= b
	}
	return f
}

func (tt *tageTable) index(pc uint64, hist History) uint64 {
	idxBits := bits.TrailingZeros64(tt.mask + 1)
	h := fold(hist.G, tt.histLen, idxBits) ^ fold(hist.P, tt.histLen/2, idxBits)
	return (pc ^ (pc >> 7) ^ h) & tt.mask
}

func (tt *tageTable) tag(pc uint64, hist History) uint16 {
	h := fold(hist.G, tt.histLen, int(tt.tagBits)) ^ (fold(hist.G, tt.histLen, int(tt.tagBits)-1) << 1)
	return uint16((pc ^ h) & ((1 << tt.tagBits) - 1))
}

// Prediction describes a TAGE lookup result; it must be passed back to
// Update so the same provider entry is trained.
type Prediction struct {
	Taken     bool
	provider  int // index into tables, -1 for bimodal
	altTaken  bool
	indices   [8]uint64
	tags      [8]uint16
	baseIndex uint64
}

// Predict looks up the direction for the branch at pc under history hist,
// filling p in place (the struct carries per-table indices and tags for
// Update, so it is returned through a pointer to avoid copying it twice
// per branch).
func (t *TAGE) Predict(pc uint64, hist History, p *Prediction) {
	t.Stats.Lookups++
	*p = Prediction{provider: -1, baseIndex: pc & t.mask}
	p.Taken = t.base[p.baseIndex] >= 0
	p.altTaken = p.Taken
	for i, tt := range t.tables {
		p.indices[i] = tt.index(pc, hist)
		p.tags[i] = tt.tag(pc, hist)
		e := &tt.entries[p.indices[i]]
		if e.tag == p.tags[i] {
			p.altTaken = p.Taken
			p.Taken = e.ctr >= 0
			p.provider = i
		}
	}
	if p.provider >= 0 {
		t.Stats.ProviderHit++
	}
}

func (t *TAGE) nextRand() uint32 {
	t.rng ^= t.rng << 13
	t.rng ^= t.rng >> 17
	t.rng ^= t.rng << 5
	return t.rng
}

// Update trains the predictor with the branch's resolved direction.
func (t *TAGE) Update(pc uint64, hist History, p *Prediction, taken bool) {
	// Train the provider.
	if p.provider >= 0 {
		e := &t.tables[p.provider].entries[p.indices[p.provider]]
		if taken && e.ctr < 3 {
			e.ctr++
		} else if !taken && e.ctr > -4 {
			e.ctr--
		}
		// Useful counter: provider was right where the alternate was wrong.
		if (e.ctr >= 0) == taken && p.altTaken != taken {
			if e.useful < 3 {
				e.useful++
			}
		}
	} else {
		b := &t.base[p.baseIndex]
		if taken && *b < 1 {
			*b++
		} else if !taken && *b > -2 {
			*b--
		}
	}

	// On a misprediction, allocate a new entry in a longer-history table.
	if p.Taken != taken && p.provider < len(t.tables)-1 {
		start := p.provider + 1
		// Randomize the starting table a little to avoid ping-ponging.
		if start < len(t.tables)-1 && t.nextRand()&3 == 0 {
			start++
		}
		for i := start; i < len(t.tables); i++ {
			e := &t.tables[i].entries[p.indices[i]]
			if e.useful == 0 {
				e.tag = p.tags[i]
				e.useful = 0
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				t.Stats.Allocs++
				return
			}
		}
		// No free entry: age the useful counters along the allocation path.
		for i := start; i < len(t.tables); i++ {
			e := &t.tables[i].entries[p.indices[i]]
			if e.useful > 0 {
				e.useful--
			}
		}
	}
}
